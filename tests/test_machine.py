"""Memory layouts, machine specs, trace generation, timing simulation."""

import pytest

from repro.core import build_execution_plan, derive_shift_peel
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load
from repro.machine import (
    ArrayPlacement,
    MemoryLayout,
    box_trace,
    contiguous_layout,
    convex_spp1000,
    fused_proc_trace,
    ksr2,
    measure_fused,
    measure_unfused,
    nest_block_trace,
    unfused_proc_trace,
)

i = Affine.var("i")
j = Affine.var("j")
n = Affine.var("n")


class TestPlacement:
    def test_strides_row_major(self):
        pl = ArrayPlacement("a", 0, (4, 6), (4, 8))
        assert pl.strides_elems == (8, 1)
        assert pl.size_bytes == 4 * 8 * 8

    def test_address(self):
        pl = ArrayPlacement("a", 1000, (4, 4), (4, 4), elem_size=8)
        assert pl.address((1, 2)) == 1000 + (4 + 2) * 8

    def test_padding_validation(self):
        with pytest.raises(ValueError):
            ArrayPlacement("a", 0, (4, 4), (4, 3))


class TestLayout:
    def test_contiguous(self):
        layout = contiguous_layout([("a", (4, 4)), ("b", (4, 4))], align=64)
        assert layout["b"].start >= layout["a"].end
        assert layout.data_bytes == 2 * 16 * 8

    def test_pad_inner(self):
        layout = contiguous_layout([("a", (4, 4))], pad_inner=3)
        assert layout["a"].padded_shape == (4, 7)
        assert layout.overhead_bytes >= 3 * 4 * 8

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            MemoryLayout(
                (
                    ArrayPlacement("a", 0, (4,), (4,)),
                    ArrayPlacement("b", 8, (4,), (4,)),
                )
            )

    def test_lookup(self):
        layout = contiguous_layout([("a", (4,))])
        assert "a" in layout and "z" not in layout
        with pytest.raises(KeyError):
            layout["z"]


class TestSpecs:
    def test_remote_fraction_monotone(self):
        spec = ksr2()
        fracs = [spec.remote_fraction(p) for p in (1, 2, 8, 56)]
        assert fracs[0] == 0.0
        assert all(a <= b for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] <= spec.remote_cap

    def test_hypernode_step(self):
        spec = convex_spp1000()
        assert spec.remote_fraction(8) == 0.0
        assert spec.remote_fraction(9) > 0.0
        assert spec.miss_penalty(16) > spec.miss_penalty(8)

    def test_barrier_grows(self):
        spec = ksr2()
        assert spec.barrier_cycles(56) > spec.barrier_cycles(2)

    def test_scaled_preserves_assoc(self):
        spec = ksr2().scaled(4)
        assert spec.cache.associativity == 2
        assert spec.cache.capacity_bytes == 64 * 1024


def simple_seq():
    l1 = LoopNest((Loop.make("i", 2, n - 1),), (assign("a", i, load("b", i)),))
    l2 = LoopNest(
        (Loop.make("i", 2, n - 1),),
        (assign("c", i, load("a", i + 1) + load("a", i - 1)),),
    )
    return LoopSequence((l1, l2), name="s")


class TestTraceGeneration:
    LAYOUT = contiguous_layout([("a", (64,)), ("b", (64,)), ("c", (64,))])

    def test_box_trace_matches_interpreter_order(self):
        seq = simple_seq()
        trace = box_trace(seq[0], [(2, 4)], self.LAYOUT, {"n": 63})
        a0 = self.LAYOUT["a"].start
        b0 = self.LAYOUT["b"].start
        expected = []
        for it in (2, 3, 4):
            expected.extend([b0 + 8 * it, a0 + 8 * it])  # read b, write a
        assert trace.tolist() == expected

    def test_stencil_offsets(self):
        seq = simple_seq()
        trace = box_trace(seq[1], [(3, 3)], self.LAYOUT, {"n": 63})
        a0 = self.LAYOUT["a"].start
        c0 = self.LAYOUT["c"].start
        assert trace.tolist() == [a0 + 8 * 4, a0 + 8 * 2, c0 + 8 * 3]

    def test_empty_box(self):
        seq = simple_seq()
        assert box_trace(seq[0], [(5, 4)], self.LAYOUT, {"n": 63}).size == 0

    def test_2d_trace_row_major(self):
        nest = LoopNest(
            (Loop.make("j", 0, 1), Loop.make("i", 0, 1)),
            (assign("m", (j, i), 1.0),),
        )
        layout = contiguous_layout([("m", (8, 8))])
        trace = box_trace(nest, [(0, 1), (0, 1)], layout, {})
        base = layout["m"].start
        assert trace.tolist() == [base, base + 8, base + 64, base + 72]

    def test_unfused_proc_trace_concatenates(self):
        seq = simple_seq()
        full = unfused_proc_trace(seq, {"n": 11}, self.LAYOUT)
        n1 = nest_block_trace(seq[0], {"n": 11}, self.LAYOUT).size
        n2 = nest_block_trace(seq[1], {"n": 11}, self.LAYOUT).size
        assert full.size == n1 + n2

    def test_block_restriction(self):
        seq = simple_seq()
        part = nest_block_trace(seq[0], {"n": 11}, self.LAYOUT, block0=(2, 5))
        assert part.size == 4 * 2

    def test_fused_trace_counts(self):
        seq = simple_seq()
        plan = derive_shift_peel(seq, ("n",))
        ep = build_execution_plan(plan, {"n": 31}, num_procs=3)
        total_refs = 0
        for proc in ep.processors:
            fused, peeled = fused_proc_trace(ep, proc, self.LAYOUT, strip=4)
            total_refs += fused.size + peeled.size
        expected = sum(
            nest.iteration_count({"n": 31}) * (len(nest.body[0].reads()) + 1)
            for nest in seq
        )
        assert total_refs == expected

    def test_unbound_name_raises(self):
        nest = LoopNest(
            (Loop.make("i", 0, 3),),
            (assign("a", i + Affine.var("q"), 1.0),),
        )
        layout = contiguous_layout([("a", (64,))])
        with pytest.raises(KeyError):
            box_trace(nest, [(0, 3)], layout, {})


class TestSimulator:
    def test_fusion_reduces_misses_when_data_exceeds_cache(self):
        from repro.experiments.common import setup_kernel

        exp = setup_kernel("ll18", convex_spp1000(), dims_div=4)
        unf = measure_unfused(exp.seq, exp.params, exp.layout, exp.machine, 1)
        fus = measure_fused(exp.exec_plan(1), exp.layout, exp.machine, strip=exp.strip)
        assert fus.misses < unf.misses
        assert fus.refs == unf.refs  # same work, relocated
        assert unf.barriers == 3 and fus.barriers == 2

    def test_speedup_over(self):
        from repro.machine.simulator import RunMeasurement

        a = RunMeasurement("unfused", "m", 1, 100.0, 0, 0, 0)
        b = RunMeasurement("fused", "m", 1, 50.0, 0, 0, 0)
        assert b.speedup_over(a) == 2.0

    def test_time_decreases_with_procs(self):
        from repro.experiments.common import setup_kernel

        exp = setup_kernel("ll18", convex_spp1000(), dims_div=4)
        t1 = measure_unfused(exp.seq, exp.params, exp.layout, exp.machine, 1)
        t4 = measure_unfused(exp.seq, exp.params, exp.layout, exp.machine, 4)
        assert t4.time_cycles < t1.time_cycles

    def test_peeled_refs_reported(self):
        from repro.experiments.common import setup_kernel

        exp = setup_kernel("ll18", convex_spp1000(), dims_div=4)
        fus = measure_fused(exp.exec_plan(4), exp.layout, exp.machine, strip=exp.strip)
        assert fus.peeled_refs > 0
