"""The self-healing subsystem: fault specs, taxonomy, breaker, retry.

Chaos engineering is only trustworthy when the chaos itself is
deterministic: the same spec against the same request sequence must
fire the same faults.  These tests pin the spec grammar (good and bad,
with errors naming their source), the plan's run/exec counters, the
failure taxonomy of :func:`classify_failure`, the circuit breaker's
step-down/probe-up state machine, the retry policy's deterministic
backoff, and — end to end — :func:`execute_resilient` recovering from
an injected worker crash by degrading one rung down the ladder while
still producing the reference bits.
"""

import multiprocessing as mp

import pytest

from repro.runtime import faults
from repro.runtime.faults import FaultPlan, FaultSpecError, _parse_indices
from repro.runtime.supervisor import (
    CircuitBreaker,
    ExecError,
    ExecFailure,
    RetryPolicy,
    classify_failure,
    degrade_ladder,
)

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="crash injection relies on fork inheritance",
)


class TestIndexParsing:
    def test_forms(self):
        assert _parse_indices("3", "t", "c") == frozenset({3})
        assert _parse_indices("3,7,11", "t", "c") == frozenset({3, 7, 11})
        assert _parse_indices("2..5", "t", "c") == frozenset({2, 3, 4, 5})
        assert _parse_indices("2..20/6", "t", "c") == frozenset({2, 8, 14, 20})

    def test_bad_forms_raise(self):
        for bad in ("x", "0", "-1", "5..2", "0..3", "2..8/0", "2..8/x"):
            with pytest.raises(FaultSpecError):
                _parse_indices(bad, "t", "c")


class TestSpecParsing:
    def test_multi_clause_spec(self):
        plan = FaultPlan.parse(
            "crash@run=3,7;slow@run=4:seconds=0.2:worker=1;"
            "stall@run=5:proc=1;cache_corrupt@exec=10")
        kinds = [c.kind for c in plan.clauses]
        assert kinds == ["crash", "slow", "stall", "cache_corrupt"]
        assert plan.clauses[0].runs == frozenset({3, 7})
        assert plan.clauses[1].seconds == 0.2
        assert plan.clauses[1].worker == 1
        assert plan.clauses[2].proc == 1
        assert plan.clauses[3].execs == frozenset({10})

    def test_crash_directive_carries_exitcode(self):
        plan = FaultPlan.parse("crash@run=1:exitcode=41")
        assert plan.clauses[0].directive() == {"action": "crash",
                                               "exitcode": 41}

    @pytest.mark.parametrize("spec, fragment", [
        ("explode@run=1", "unknown fault kind"),
        ("crash", "needs run="),
        ("crash@worker=1", "needs run="),
        ("cache_corrupt@run=1", "needs exec="),
        ("crash@run=", "expected key=value"),
        ("crash@run=1:color=red", "unknown key"),
        ("crash@run=1:seconds=fast", "bad seconds"),
        ("crash@run=1:worker=two", "bad worker"),
        ("", "empty fault spec"),
        (";;", "empty fault spec"),
    ])
    def test_bad_specs_raise_with_source(self, spec, fragment):
        with pytest.raises(FaultSpecError) as excinfo:
            FaultPlan.parse(spec, source="--chaos")
        message = str(excinfo.value)
        assert fragment in message
        assert "--chaos" in message


class TestEnvActivation:
    def test_no_plan_by_default(self):
        assert faults.active_plan() is None

    def test_env_variable_activates(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "crash@run=2")
        plan = faults.active_plan()
        assert plan is not None and plan.clauses[0].kind == "crash"
        # parse once, then cached by raw string
        assert faults.active_plan() is plan

    def test_bad_env_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "kaboom@run=1")
        with pytest.raises(FaultSpecError, match=faults.ENV_FAULTS):
            faults.active_plan()

    def test_installed_plan_wins_and_reset_clears(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "crash@run=2")
        installed = FaultPlan.parse("slow@run=1:seconds=0.01")
        faults.install_plan(installed)
        assert faults.active_plan() is installed
        faults.install_plan(None)
        assert faults.active_plan().spec == "crash@run=2"
        monkeypatch.delenv(faults.ENV_FAULTS)
        faults.reset()
        assert faults.active_plan() is None


class TestDeterministicFiring:
    def test_run_counter_is_plan_local(self):
        plan = FaultPlan.parse("crash@run=2")
        assert plan.take_worker_faults(2) == {}
        fired = plan.take_worker_faults(2)
        assert fired == {0: {"action": "crash",
                             "exitcode": faults.CHAOS_EXITCODE}}
        assert plan.take_worker_faults(2) == {}
        assert plan.clauses[0].fired == 1
        assert plan.describe()["runs_seen"] == 3

    def test_worker_selector_clamped_to_pool_size(self):
        plan = FaultPlan.parse("crash@run=1:worker=5")
        fired = plan.take_worker_faults(2)
        assert list(fired) == [5 % 2]

    def test_first_clause_per_worker_wins(self):
        plan = FaultPlan.parse(
            "slow@run=1:seconds=0.01;crash@run=1")
        fired = plan.take_worker_faults(2)
        assert fired[0]["action"] == "slow"

    def test_range_step_fires_each_match(self):
        plan = FaultPlan.parse("crash@run=1..5/2")
        hits = [bool(plan.take_worker_faults(2)) for _ in range(6)]
        assert hits == [True, False, True, False, True, False]

    def test_cache_fault_counter(self):
        plan = FaultPlan.parse("cache_corrupt@exec=2")
        assert plan.take_cache_fault() is False
        assert plan.take_cache_fault() is True
        assert plan.take_cache_fault() is False


class TestClassifyFailure:
    def test_jit_compile_error_kinds(self):
        from repro.codegen.emitpy import JitCompileError

        assert (classify_failure(JitCompileError("syntax error")).kind
                == "compile_error")
        assert (classify_failure(
            JitCompileError("signature mismatch: stale entry")).kind
            == "cache_corrupt")

    def test_worker_death_extracts_casualties(self):
        from repro.runtime.fastexec import FastExecError

        failure = classify_failure(FastExecError(
            "mpjit worker 1 died without reporting a result (exitcode 97)"))
        assert failure.kind == "worker_crash"
        assert failure.workers == (1,)
        assert failure.exitcodes == (97,)
        assert failure.retryable is True

    def test_sync_messages_map_to_sync_timeout(self):
        from repro.runtime.fastexec import FastExecError, SyncAborted

        assert classify_failure(SyncAborted("x")).kind == "sync_timeout"
        for msg in ("no fused-done signal from processor 2",
                    "p2p sync aborted (a peer failed first)",
                    "barrier broken or aborted"):
            assert classify_failure(FastExecError(msg)).kind == "sync_timeout"

    def test_exec_error_passthrough_and_fallbacks(self):
        from repro.runtime.fastexec import FastExecError

        original = ExecFailure(kind="overload", message="shed")
        assert classify_failure(ExecError(original)) is original
        assert classify_failure(FastExecError("weird")).kind == "internal"
        unknown = classify_failure(ValueError("app bug"))
        assert unknown.kind == "internal"
        assert unknown.retryable is False

    def test_as_dict_truncates_message(self):
        failure = ExecFailure(kind="internal", message="x" * 5000)
        assert len(failure.as_dict()["message"]) == 2000


class TestCircuitBreaker:
    def test_steps_down_after_threshold(self):
        breaker = CircuitBreaker(threshold=2, cooldown_seconds=3600)
        assert breaker.effective_backend("sig", "mpjit") == ("mpjit", False)
        breaker.record_failure("sig", "mpjit")
        assert breaker.effective_backend("sig", "mpjit") == ("mpjit", False)
        breaker.record_failure("sig", "mpjit")
        assert breaker.effective_backend("sig", "mpjit") == ("jit", True)
        assert breaker.trips == 1
        # a different signature is unaffected
        assert breaker.effective_backend("other", "mpjit") == ("mpjit", False)

    def test_success_clears_and_cooldown_probes_up(self):
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=0.0)
        breaker.record_failure("sig", "mpjit")
        # cooldown 0: the very next request probes one rung back up
        assert breaker.effective_backend("sig", "mpjit") == ("mpjit", False)
        breaker.record_success("sig")
        assert "sig" not in breaker._state

    def test_bottom_rung_is_sticky(self):
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=3600)
        for _ in range(5):
            breaker.record_failure("sig", "mpjit")
        assert breaker.effective_backend("sig", "mpjit") == ("vector", True)

    def test_signature_cap_evicts_oldest(self):
        breaker = CircuitBreaker(threshold=1, max_signatures=2)
        for sig in ("a", "b", "c"):
            breaker.record_failure(sig, "mpjit")
        assert len(breaker._state) == 2 and "a" not in breaker._state

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("s" * 40, "mpjit")
        snap = breaker.snapshot()
        assert snap["trips"] == 1
        assert list(snap["open"]) == ["s" * 16]


class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy()
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == \
            [0.02, 0.08, 0.32, 0.5]

    def test_ladders(self):
        assert degrade_ladder("mpjit") == ("mpjit", "jit", "vector")
        assert degrade_ladder("jit") == ("jit", "vector")
        assert degrade_ladder("interp") == ("interp",)


class TestExecuteResilient:
    @needs_fork
    def test_crash_degrades_one_rung_and_matches_reference(self):
        """An injected worker crash on the first attempt: the retry runs
        ``jit`` and must produce the vector reference checksum."""
        from repro.runtime.benchmarking import (
            execute_prepared,
            execute_resilient,
            prepare_kernel,
        )
        from repro.runtime.pool import shutdown_pool

        try:
            prep = prepare_kernel("jacobi", n=25, procs=2, backend="mpjit")
            _s, _c, reference = execute_prepared(
                prepare_kernel("jacobi", n=25, procs=2, backend="vector"),
                "vector")
            faults.install_plan(FaultPlan.parse("crash@run=1", source="test"))
            breaker = CircuitBreaker()
            _s, _c, digest, recovery = execute_resilient(
                prep, "mpjit", max_workers=2,
                policy=RetryPolicy(max_attempts=3), breaker=breaker)
            assert digest == reference
            assert recovery["retries"] == 1
            assert recovery["degraded"] is True
            assert recovery["backend_used"] == "jit"
            assert recovery["attempts"] == [
                {"backend": "mpjit", "kind": "worker_crash"}]
        finally:
            faults.install_plan(None)
            shutdown_pool()

    @needs_fork
    def test_exhausted_attempts_raise_structured_error(self):
        from repro.runtime.benchmarking import (
            execute_resilient,
            prepare_kernel,
        )
        from repro.runtime.pool import shutdown_pool

        try:
            prep = prepare_kernel("jacobi", n=25, procs=2, backend="mpjit")
            faults.install_plan(FaultPlan.parse("crash@run=1", source="test"))
            with pytest.raises(ExecError) as excinfo:
                execute_resilient(prep, "mpjit", max_workers=2,
                                  policy=RetryPolicy(max_attempts=1),
                                  breaker=CircuitBreaker())
            assert excinfo.value.failure.kind == "worker_crash"
        finally:
            faults.install_plan(None)
            shutdown_pool()


class TestCacheCorruption:
    def test_corrupt_cache_entry_quarantined_on_next_load(self, tmp_path):
        """The chaos corruption primitive garbles a real entry; the next
        load must quarantine it to ``<entry>.bad`` and recompile."""
        from repro.runtime.plancache import PlanCache
        from test_plancache import _chain_plan

        cache = PlanCache(root=tmp_path / "c")
        ep = _chain_plan()
        module = cache.get(ep)
        name = faults.corrupt_cache_entry(cache)
        assert name == cache.source_path(module.signature).name
        assert cache.peek(module.signature) is None  # corrupt: dropped
        assert cache.stats.quarantined == 1
        bad = cache.source_path(module.signature).with_suffix(".bad")
        assert bad.exists() and "chaos" in bad.read_text()
        fresh = cache.get(ep)  # recompiled from the plan
        assert fresh.source == module.source

    def test_corrupt_cache_entry_empty_cache(self, tmp_path):
        from repro.runtime.plancache import PlanCache

        cache = PlanCache(root=tmp_path / "c")
        assert faults.corrupt_cache_entry(cache) is None
