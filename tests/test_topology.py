"""Interconnect topology models."""

import pytest

from repro.machine import (
    HypernodeTopology,
    RingTopology,
    apply_topology,
    convex_cti,
    convex_spp1000,
    ksr2,
    ksr2_ring,
)


class TestRing:
    def test_single_node(self):
        assert RingTopology().avg_hops(1) == 0.0

    def test_two_nodes(self):
        assert RingTopology().avg_hops(2) == 1.0

    @pytest.mark.parametrize("n,expected", [(4, (1 + 2 + 1) / 3), (6, (1 + 2 + 3 + 2 + 1) / 5)])
    def test_exact_small_rings(self, n, expected):
        assert RingTopology().avg_hops(n) == pytest.approx(expected)

    def test_grows_linearly(self):
        ring = RingTopology()
        assert ring.avg_hops(64) > 2 * ring.avg_hops(16)

    def test_penalty_monotone_in_size(self):
        ring = ksr2_ring()
        penalties = [ring.remote_penalty(p) for p in (2, 8, 32, 56)]
        assert penalties == sorted(penalties)

    def test_calibration_matches_flat_spec(self):
        """At the paper's 56 processors the derived penalty reproduces the
        calibrated flat value used by the figures."""
        derived = ksr2_ring().remote_penalty(56)
        assert derived == pytest.approx(ksr2().miss_penalty_remote, rel=0.05)


class TestHypernode:
    def test_single_hypernode_flat(self):
        topo = HypernodeTopology(node_size=8)
        assert topo.avg_hops(8) == 0.0
        assert topo.remote_penalty(8) == topo.intra_cycles

    def test_crossing_hypernodes(self):
        topo = convex_cti()
        assert topo.num_hypernodes(9) == 2
        assert topo.remote_penalty(9) == topo.inter_cycles

    def test_matches_spec_penalties(self):
        spec = convex_spp1000()
        topo = convex_cti()
        assert topo.intra_cycles == spec.miss_penalty_local
        assert topo.inter_cycles == spec.miss_penalty_remote


class TestApplyTopology:
    def test_derived_spec(self):
        spec = apply_topology(ksr2(), ksr2_ring(), 8)
        assert spec.miss_penalty_remote < ksr2().miss_penalty_remote
        assert spec.miss_penalty_local == ksr2().miss_penalty_local
        assert "RingTopology" in spec.name

    def test_small_machines_pay_less_for_misses(self):
        """The scalability story: the same kernel's miss cost grows with
        ring length even at a fixed processor count share."""
        small = apply_topology(ksr2(), ksr2_ring(), 8)
        large = apply_topology(ksr2(), ksr2_ring(), 56)
        assert small.miss_penalty(8) < large.miss_penalty(8)
