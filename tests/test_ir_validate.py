"""Admissibility validation (Appendix Def. 1)."""

import pytest

from repro.ir import (
    Affine,
    AdmissibilityError,
    Loop,
    LoopNest,
    LoopSequence,
    assign,
    canonical_fused_vars,
    load,
    validate_program,
    validate_sequence,
)

i = Affine.var("i")
k = Affine.var("k")
n = Affine.var("n")


def nest_1d(var="i", parallel=True, name=""):
    v = Affine.var(var)
    return LoopNest(
        (Loop.make(var, 2, n - 1, parallel=parallel),),
        (assign("a", v, load("b", v)),),
        name=name,
    )


class TestValidateSequence:
    def test_valid(self, fig9_sequence):
        assert validate_sequence(fig9_sequence, ("n",)).ok

    def test_sequential_fused_loop_rejected(self):
        seq = LoopSequence((nest_1d(parallel=False),))
        report = validate_sequence(seq, ("n",))
        assert not report.ok
        assert "sequential" in report.findings[0]
        with pytest.raises(AdmissibilityError):
            report.raise_if_bad()

    def test_non_affine_names_rejected(self):
        bad = LoopNest(
            (Loop.make("i", 2, n - 1),),
            (assign("a", i + Affine.var("q"), 1.0),),
        )
        report = validate_sequence(LoopSequence((bad,)), ("n",))
        assert not report.ok

    def test_loop_var_in_bounds_rejected(self):
        bad = LoopNest(
            (Loop.make("j", 2, n - 1), Loop.make("i", 2, Affine.var("j"))),
            (assign("a", (Affine.var("j"), i), 1.0),),
        )
        report = validate_sequence(LoopSequence((bad,)), ("n",), fuse_depth=1)
        assert not report.ok

    def test_depth_exceeding_nest_rejected(self):
        seq = LoopSequence((nest_1d(),))
        report = validate_sequence(seq, ("n",), fuse_depth=2)
        assert not report.ok


class TestValidateProgram:
    def test_undeclared_array_flagged(self):
        from repro.ir import ArrayDecl, single_sequence_program

        prog = single_sequence_program(
            [nest_1d()], [ArrayDecl.make("a", n + 1)], ("n",)
        )
        report = validate_program(prog)
        assert not report.ok
        assert any("b" in f for f in report.findings)

    def test_kernels_all_valid(self):
        from repro.kernels import all_kernels

        for info in all_kernels():
            assert validate_program(info.program()).ok, info.name


class TestCanonicalization:
    def test_renames_to_first_nest(self):
        seq = LoopSequence((nest_1d("i"), nest_1d("k")))
        canon = canonical_fused_vars(seq, 1)
        assert canon[1].loop_vars == ("i",)
        assert "a[i]" in str(canon[1].body[0])

    def test_capture_avoidance(self):
        # Second nest: loops (k, i) fusing depth 1 -> k renamed to i, but the
        # inner loop already uses i and must be renamed away.
        inner = LoopNest(
            (Loop.make("k", 2, n - 1), Loop.make("i", 2, n - 1)),
            (assign("a", (k, i), load("b", k, i)),),
        )
        outer = LoopNest(
            (Loop.make("i", 2, n - 1), Loop.make("j", 2, n - 1)),
            (assign("c", (i, Affine.var("j")), load("a", i, Affine.var("j"))),),
        )
        canon = canonical_fused_vars(LoopSequence((outer, inner)), 1)
        vars_ = canon[1].loop_vars
        assert vars_[0] == "i"
        assert len(set(vars_)) == 2

    def test_noop_when_aligned(self, fig9_sequence):
        canon = canonical_fused_vars(fig9_sequence, 1)
        assert canon[0].loop_vars == fig9_sequence[0].loop_vars
