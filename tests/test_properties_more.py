"""Further property-based tests: 2-D fusion, generated code equivalence,
greedy partitioning invariants, DSL round-trips."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cachesim import CacheConfig
from repro.codegen import run_direct, run_spmd
from repro.core import (
    build_execution_plan,
    derive_shift_peel,
    max_processors,
    verify_coverage,
)
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load
from repro.lang import parse_sequence
from repro.ir.printer import format_sequence
from repro.partition import greedy_memory_layout
from repro.runtime import run_parallel, run_sequence_serial


# ---------------------------------------------------------------------------
# 2-D chains fused in both dimensions
# ---------------------------------------------------------------------------


@st.composite
def chains_2d(draw):
    num_nests = draw(st.integers(2, 3))
    chains = []
    for k in range(num_nests):
        source = f"t{k - 1}" if k else "src"
        num_reads = draw(st.integers(1, 3))
        offsets = draw(
            st.lists(
                st.tuples(st.integers(-1, 1), st.integers(-1, 1)),
                min_size=num_reads, max_size=num_reads, unique=True,
            )
        )
        chains.append([(source, off) for off in offsets])
    return chains


def build_2d_sequence(chains):
    ii = Affine.var("i")
    jj = Affine.var("j")
    n = Affine.var("n")
    nests = []
    for k, reads in enumerate(chains):
        rhs = None
        for array, (dj, di) in reads:
            term = load(array, jj + dj, ii + di)
            rhs = term if rhs is None else rhs + term
        nests.append(
            LoopNest(
                (Loop.make("j", 2, n - 1), Loop.make("i", 2, n - 1)),
                (assign(f"t{k}", (jj, ii), rhs * 0.5),),
                name=f"L{k + 1}",
            )
        )
    return LoopSequence(tuple(nests), name="rand2d")


class Test2DFusionProperty:
    @given(chains_2d(), st.integers(1, 3), st.integers(1, 3), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_fused_2d_equals_oracle(self, chains, gj, gi, seed):
        seq = build_2d_sequence(chains)
        params = {"n": 25}
        plan = derive_shift_peel(seq, ("n",))
        ceilings = max_processors(plan, params)
        grid = (min(gj, ceilings[0]), min(gi, ceilings[1]))

        rng = np.random.default_rng(seed)
        names = ["src"] + [f"t{k}" for k in range(len(chains))]
        base = {name: rng.random((26, 26)) + 0.5 for name in names}

        oracle = {k: v.copy() for k, v in base.items()}
        run_sequence_serial(seq, params, oracle)

        ep = build_execution_plan(plan, params, grid_shape=grid)
        assert verify_coverage(ep)
        got = {k: v.copy() for k, v in base.items()}
        run_parallel(ep, got, interleave="random", strip=3,
                     rng=np.random.default_rng(seed + 1))
        for name in names:
            assert np.allclose(oracle[name], got[name]), name


# ---------------------------------------------------------------------------
# Generated code equals the oracle too (CIR paths)
# ---------------------------------------------------------------------------


@st.composite
def chains_1d(draw):
    num_nests = draw(st.integers(2, 4))
    out = []
    for k in range(num_nests):
        source = f"t{k - 1}" if k else "src"
        offsets = draw(
            st.lists(st.integers(-2, 2), min_size=1, max_size=3, unique=True)
        )
        out.append([(source, off) for off in offsets])
    return out


def build_1d_sequence(chains):
    ii = Affine.var("i")
    n = Affine.var("n")
    nests = []
    for k, reads in enumerate(chains):
        rhs = None
        for array, off in reads:
            term = load(array, ii + off)
            rhs = term if rhs is None else rhs + term
        nests.append(
            LoopNest(
                (Loop.make("i", 3, n - 3),),
                (assign(f"t{k}", ii, rhs * 0.5),),
                name=f"L{k + 1}",
            )
        )
    return LoopSequence(tuple(nests), name="rand1d")


class TestGeneratedCodeProperty:
    @given(chains_1d(), st.integers(1, 4), st.integers(2, 7), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_spmd_code_equals_oracle(self, chains, procs, strip, seed):
        seq = build_1d_sequence(chains)
        params = {"n": 40}
        plan = derive_shift_peel(seq, ("n",))
        procs = min(procs, max_processors(plan, params)[0])

        rng = np.random.default_rng(seed)
        names = ["src"] + [f"t{k}" for k in range(len(chains))]
        base = {name: rng.random(41) + 0.5 for name in names}
        oracle = {k: v.copy() for k, v in base.items()}
        run_sequence_serial(seq, params, oracle)

        ep = build_execution_plan(plan, params, num_procs=procs)
        got = {k: v.copy() for k, v in base.items()}
        order = list(rng.permutation(procs))
        run_spmd(ep, got, strip=strip, proc_order=[int(p) for p in order])
        for name in names:
            assert np.allclose(oracle[name], got[name]), name

    @given(chains_1d(), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_direct_method_equals_oracle(self, chains, seed):
        seq = build_1d_sequence(chains)
        params = {"n": 40}
        plan = derive_shift_peel(seq, ("n",))
        rng = np.random.default_rng(seed)
        names = ["src"] + [f"t{k}" for k in range(len(chains))]
        base = {name: rng.random(41) + 0.5 for name in names}
        oracle = {k: v.copy() for k, v in base.items()}
        run_sequence_serial(seq, params, oracle)
        got = {k: v.copy() for k, v in base.items()}
        run_direct(plan, params, got)
        for name in names:
            assert np.allclose(oracle[name], got[name]), name


# ---------------------------------------------------------------------------
# Greedy partitioning invariants
# ---------------------------------------------------------------------------


class TestGreedyLayoutProperty:
    @given(
        st.lists(st.integers(8, 200), min_size=1, max_size=10),
        st.sampled_from([1, 2]),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, dims, assoc):
        cache = CacheConfig(8 * 1024, 64, assoc)
        arrays = [(f"x{k}", (d, d)) for k, d in enumerate(dims)]
        res = greedy_memory_layout(arrays, cache)
        # 1. Every array in a distinct partition index.
        parts = [a.partition for a in res.assignments]
        assert len(set(parts)) == len(parts)
        # 2. Starts map exactly onto the partition targets.
        for rec in res.assignments:
            start = res.layout[rec.array].start
            assert cache.map_address(start) == rec.target_cache_address
        # 3. No overlap, memory order preserved, gaps bounded by one way.
        placed = sorted(res.layout.placements, key=lambda p: p.start)
        for a, b in zip(placed, placed[1:]):
            assert a.end <= b.start
        for rec in res.assignments:
            assert 0 <= rec.gap_bytes < cache.way_bytes


# ---------------------------------------------------------------------------
# DSL round-trips
# ---------------------------------------------------------------------------


class TestRoundtripProperty:
    @given(chains_1d())
    @settings(max_examples=30, deadline=None)
    def test_print_parse_roundtrip(self, chains):
        seq = build_1d_sequence(chains)
        printed = format_sequence(seq)
        reparsed = parse_sequence(printed)
        assert format_sequence(reparsed) == printed
        # And the reparsed sequence derives the identical plan.
        a = derive_shift_peel(seq, ("n",))
        b = derive_shift_peel(reparsed, ("n",))
        assert a.dims[0].shifts == b.dims[0].shifts
        assert a.dims[0].peels == b.dims[0].peels
