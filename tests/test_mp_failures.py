"""Worker-crash safety for the mp and mpjit backends.

A parallel runtime is only production-grade if a dead worker surfaces as
a prompt, informative error instead of a 600 s barrier hang.  These tests
inject failures into one worker — a Python exception (the traceback must
travel to the parent) and a hard ``os._exit`` (the liveness poll must
notice) — and assert that the run raises
:class:`~repro.runtime.fastexec.FastExecError` well under 10 seconds,
leaks no shared-memory segments and leaves no live child processes.
Failure injection relies on ``fork`` start-method inheritance (the
monkeypatched module state is visible in the forked worker), so the
crash tests skip on platforms without ``fork``.
"""

import multiprocessing as mp
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import build_execution_plan, derive_shift_peel
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load
from repro.runtime import fastexec
from repro.runtime import pool as pool_mod
from repro.runtime.fastexec import (
    FastExecError,
    P2PSync,
    SyncAborted,
    _resolve_workers,
    run_mp,
    sync_timeout,
)
from repro.runtime.pool import pool_stats, run_mpjit, shutdown_pool

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="crash injection relies on fork inheritance",
)

CRASH_BUDGET_SECONDS = 10.0


def _plan(n=25, procs=3):
    i = Affine.var("i")
    nsym = Affine.var("n")
    seq = LoopSequence(
        (
            LoopNest((Loop.make("i", 2, nsym - 1),),
                     (assign("a", i, load("b", i)),), name="L1"),
            LoopNest((Loop.make("i", 2, nsym - 1),),
                     (assign("c", i, load("a", i + 1) + load("a", i - 1)),),
                     name="L2"),
        ),
        name="chain",
    )
    plan = derive_shift_peel(seq, ("n",))
    return build_execution_plan(plan, {"n": n}, num_procs=procs)


def _arrays(size=26, seed=11):
    rng = np.random.default_rng(seed)
    return {name: rng.random(size) + 0.5 for name in "abc"}


def _shm_entries():
    """Names of live POSIX shared-memory segments (Linux); None elsewhere."""
    base = Path("/dev/shm")
    if not base.is_dir():
        return None
    return {p.name for p in base.iterdir()}


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Crash tests must not inherit (or leave behind) a live pool: the
    injection hook is captured at fork time, and a poisoned barrier must
    not leak into the next test."""
    shutdown_pool()
    yield
    pool_mod._test_worker_hook = None
    shutdown_pool()


@pytest.fixture
def leak_check():
    """Assert no new shm segments and no new child processes survive."""
    shm_before = _shm_entries()
    children_before = set(mp.active_children())
    yield
    # A healthy pool deliberately outlives the run; retire it before
    # checking so only *unexpected* survivors count as leaks.
    shutdown_pool()
    leftover = set(mp.active_children()) - children_before
    assert not leftover, f"live child processes leaked: {leftover}"
    if shm_before is not None:
        leaked = _shm_entries() - shm_before
        assert not leaked, f"shared-memory segments leaked: {leaked}"


class TestSyncTimeoutEnv:
    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(fastexec.ENV_SYNC_TIMEOUT, "42.5")
        assert sync_timeout() == 42.5

    def test_garbage_and_nonpositive_raise_naming_the_variable(
        self, monkeypatch
    ):
        """A typo'd knob must fail loudly at parse time — a silent
        fall-back to 600 s turns a config error into a mystery hang."""
        from repro.runtime.fastexec import EnvConfigError

        for bad in ("abc", "1h", "-3", "0"):
            monkeypatch.setenv(fastexec.ENV_SYNC_TIMEOUT, bad)
            with pytest.raises(EnvConfigError,
                               match=fastexec.ENV_SYNC_TIMEOUT):
                sync_timeout()

    def test_unset_and_blank_fall_back(self, monkeypatch):
        monkeypatch.setenv(fastexec.ENV_SYNC_TIMEOUT, "")
        assert sync_timeout() == fastexec.DEFAULT_SYNC_TIMEOUT
        monkeypatch.delenv(fastexec.ENV_SYNC_TIMEOUT)
        assert sync_timeout() == fastexec.DEFAULT_SYNC_TIMEOUT

    @needs_fork
    def test_bad_env_rejected_before_any_fork(self, monkeypatch):
        """mpjit validates the knob in the parent — the error names the
        variable instead of surfacing as a worker traceback."""
        from repro.runtime.fastexec import EnvConfigError

        monkeypatch.setenv(fastexec.ENV_SYNC_TIMEOUT, "soon")
        with pytest.raises(EnvConfigError,
                           match=fastexec.ENV_SYNC_TIMEOUT):
            run_mpjit(_plan(), _arrays(), max_workers=2)
        assert pool_stats()["alive"] is False  # nothing was spawned

    def test_pytest_suite_runs_bounded(self):
        """The conftest fixture must keep the backstop in seconds, not
        minutes, for every test in this suite."""
        assert sync_timeout() <= 15


class TestP2PSyncUnit:
    """Deterministic unit checks of the event protocol — no processes."""

    def _sync(self, nprocs=3):
        ctx = mp.get_context()
        return P2PSync([ctx.Event() for _ in range(nprocs)], ctx.Event())

    def test_wait_returns_once_preds_signalled(self):
        sync = self._sync()
        sync.signal_fused_done(0)
        sync.signal_fused_done(2)
        sync.wait_for((0, 2))  # must not block
        sync.wait_for(())      # no predecessors: immediate

    def test_abort_releases_waiter_promptly(self):
        """A waiter parked on a never-signalled event must observe the
        abort within the poll interval — the sub-0.2 s failure budget."""
        sync = self._sync()
        sync.abort()
        t0 = time.monotonic()
        with pytest.raises(SyncAborted, match="a peer failed first"):
            sync.wait_for((1,))
        assert time.monotonic() - t0 < 0.2

    def test_timeout_raises_and_aborts_peers(self):
        sync = self._sync()
        with pytest.raises(SyncAborted, match="no fused-done signal"):
            sync.wait_for((1,), timeout=0.15)
        # the timed-out waiter released everyone else
        assert sync.abort_event.is_set()

    def test_unknown_sync_mode_rejected(self):
        with pytest.raises(FastExecError, match="unknown sync mode"):
            run_mp(_plan(), _arrays(), max_workers=2, sync="psychic")
        with pytest.raises(FastExecError, match="unknown sync mode"):
            run_mpjit(_plan(), _arrays(), max_workers=2, sync="psychic")


class TestRunMpCrashSafety:
    @needs_fork
    def test_worker_exception_ships_traceback(self, monkeypatch, leak_check):
        def boom(*args, **kwargs):
            raise ValueError("injected-mp-boom")

        monkeypatch.setattr(fastexec, "_run_proc_fused", boom)
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mp(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        message = str(excinfo.value)
        assert "injected-mp-boom" in message
        assert "Traceback" in message

    @needs_fork
    def test_worker_hard_crash_detected_by_liveness_poll(
        self, monkeypatch, leak_check
    ):
        monkeypatch.setattr(
            fastexec, "_run_proc_fused",
            lambda *args, **kwargs: os._exit(17),
        )
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mp(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        message = str(excinfo.value)
        assert "died without reporting" in message
        assert "17" in message

    @needs_fork
    def test_peel_phase_exception_after_barrier(self, monkeypatch, leak_check):
        def boom(*args, **kwargs):
            raise RuntimeError("injected-peel-boom")

        monkeypatch.setattr(fastexec, "_run_proc_peeled", boom)
        t0 = time.monotonic()
        with pytest.raises(FastExecError, match="injected-peel-boom"):
            run_mp(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS

    def test_default_worker_count_capped_by_cores(self, monkeypatch):
        """A 56-processor plan must not fork 56 processes on a small host."""
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert _resolve_workers(56, None) == 4
        assert _resolve_workers(2, None) == 2
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert _resolve_workers(56, None) == 1
        # An explicit request still wins (tests use it to force the pool).
        assert _resolve_workers(56, 8) == 8
        assert _resolve_workers(3, 8) == 3
        assert _resolve_workers(3, 0) == 1


class TestMpjitCrashSafety:
    @needs_fork
    def test_worker_exception_ships_traceback(self, leak_check):
        from repro.runtime.supervisor import default_supervisor

        def boom(worker_id, signature):
            raise ValueError("injected-mpjit-boom")

        pool_mod._test_worker_hook = boom
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mpjit(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        message = str(excinfo.value)
        assert "injected-mpjit-boom" in message
        assert "Traceback" in message
        # The poisoned pool is repaired off the hot path, not abandoned.
        default_supervisor().wait(timeout=10.0)
        assert pool_stats()["alive"] is True

    @needs_fork
    def test_worker_hard_crash_detected_and_classified(self, leak_check):
        from repro.runtime.supervisor import ExecError, default_supervisor

        pool_mod._test_worker_hook = (
            lambda worker_id, signature: os._exit(23)
        )
        t0 = time.monotonic()
        with pytest.raises(ExecError) as excinfo:
            run_mpjit(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        assert "died without reporting" in str(excinfo.value)
        failure = excinfo.value.failure
        assert failure.kind == "worker_crash"
        assert failure.retryable is True
        assert 23 in failure.exitcodes
        supervisor = default_supervisor()
        supervisor.wait(timeout=10.0)
        assert pool_stats()["alive"] is True
        stats = supervisor.stats()
        assert stats["recoveries"] >= 1
        assert stats["failures"].get("worker_crash", 0) >= 1
        assert any(q["exitcode"] == 23 for q in stats["quarantined"])

    @needs_fork
    def test_pool_recovers_after_crash(self, leak_check):
        """A failed run poisons the pool; after the supervisor's repair
        (or an explicit teardown) the next run must produce correct
        results.  The explicit shutdown here also discards the repaired
        workers, which inherited the injection hook at fork time."""
        from repro.runtime.supervisor import default_supervisor

        def boom(worker_id, signature):
            raise ValueError("poison")

        pool_mod._test_worker_hook = boom
        with pytest.raises(FastExecError):
            run_mpjit(_plan(), _arrays(), max_workers=2)
        pool_mod._test_worker_hook = None
        default_supervisor().wait(timeout=10.0)
        shutdown_pool()

        ep = _plan()
        base = _arrays()
        from repro.runtime import run_parallel

        ref = {k: v.copy() for k, v in base.items()}
        expected = run_parallel(ep, ref)
        got = {k: v.copy() for k, v in base.items()}
        stats = run_mpjit(ep, got, max_workers=2)
        assert stats == {
            "fused_iterations": expected["fused_iterations"],
            "peeled_iterations": expected["peeled_iterations"],
        }
        for name in ref:
            assert np.array_equal(ref[name], got[name]), name
        assert pool_stats()["alive"] is True


class TestP2PCrashPropagation:
    """Crashes on the point-to-point path: a worker dying *before* it
    signals fused-done must fail its dependents promptly (via the parent
    liveness poll + abort event), release shared memory and poison the
    pool — never strand a waiter until the timeout backstop."""

    @needs_fork
    def test_mp_partial_fused_crash_releases_waiters(
        self, monkeypatch, leak_check
    ):
        """Worker 0 (procs 0 and 2) dies after signaling proc 0 but
        before proc 2; worker 1's peeled phase waits on proc 2's event
        and must be released by the abort, not the 600 s backstop."""
        real = fastexec._run_proc_fused
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1  # per-process state: fork copies it at zero
            if calls["n"] == 2:
                os._exit(29)
            return real(*args, **kwargs)

        monkeypatch.setattr(fastexec, "_run_proc_fused", flaky)
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mp(_plan(), _arrays(), max_workers=2, sync="p2p")
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        assert "died without reporting" in str(excinfo.value)

    @needs_fork
    def test_mp_barrier_mode_crash_still_prompt(self, monkeypatch, leak_check):
        """The explicit barrier path keeps the historical semantics."""
        monkeypatch.setattr(fastexec, "_run_proc_fused",
                            lambda *a, **k: os._exit(31))
        t0 = time.monotonic()
        with pytest.raises(FastExecError, match="died without reporting"):
            run_mp(_plan(), _arrays(), max_workers=2, sync="barrier")
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS

    @needs_fork
    def test_mpjit_crash_before_fused_done_repaired_in_place(
        self, leak_check
    ):
        """A pool worker dying before any fused-done signal: dependents
        fail fast, the supervisor re-forks only the corpse (warm
        survivors keep their modules — ``spawns`` does not move), and
        the next p2p run produces the reference bits."""
        from repro.runtime import faults
        from repro.runtime.supervisor import ExecError, default_supervisor

        run_mpjit(_plan(), _arrays(), max_workers=2, sync="p2p")  # warm
        spawns_before = pool_stats()["spawns"]
        faults.install_plan(faults.FaultPlan.parse(
            "crash@run=1:worker=0:exitcode=37", source="test"))
        t0 = time.monotonic()
        with pytest.raises(ExecError) as excinfo:
            run_mpjit(_plan(), _arrays(), max_workers=2, sync="p2p")
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        assert "died without reporting" in str(excinfo.value)
        assert excinfo.value.failure.kind == "worker_crash"
        faults.install_plan(None)
        supervisor = default_supervisor()
        supervisor.wait(timeout=10.0)
        stats = pool_stats()
        assert stats["alive"] is True
        assert stats["spawns"] == spawns_before  # in-place, not teardown
        assert supervisor.stats()["respawns"] >= 1

        ep = _plan()
        base = _arrays()
        from repro.runtime import run_parallel

        ref = {k: v.copy() for k, v in base.items()}
        run_parallel(ep, ref)
        got = {k: v.copy() for k, v in base.items()}
        run_mpjit(ep, got, max_workers=2, sync="p2p")
        assert pool_stats()["last_sync"] == "p2p"
        for name in ref:
            assert np.array_equal(ref[name], got[name]), name

    @needs_fork
    def test_mpjit_exception_during_p2p_ships_traceback(self, leak_check):
        from repro.runtime.supervisor import default_supervisor

        def boom(worker_id, signature):
            if worker_id == 1:
                raise ValueError("injected-p2p-boom")

        pool_mod._test_worker_hook = boom
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mpjit(_plan(), _arrays(), max_workers=2, sync="p2p")
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        message = str(excinfo.value)
        assert "injected-p2p-boom" in message
        assert "Traceback" in message
        default_supervisor().wait(timeout=10.0)
        assert pool_stats()["alive"] is True


class TestP2PSlotFallback:
    def test_plan_larger_than_event_table_uses_barrier(
        self, monkeypatch, leak_check
    ):
        """A plan with more processors than preallocated event slots must
        fall back to the global barrier for that run — and still produce
        the reference bits."""
        monkeypatch.setattr(pool_mod, "P2P_EVENT_SLOTS", 2)
        ep = _plan(procs=3)
        base = _arrays()
        from repro.runtime import run_parallel

        ref = {k: v.copy() for k, v in base.items()}
        run_parallel(ep, ref)
        got = {k: v.copy() for k, v in base.items()}
        run_mpjit(ep, got, max_workers=2, sync="p2p")
        assert pool_stats()["last_sync"] == "barrier"
        for name in ref:
            assert np.array_equal(ref[name], got[name]), name

    def test_pool_stats_report_sync_and_slots(self, leak_check):
        run_mpjit(_plan(), _arrays(), max_workers=2)
        stats = pool_stats()
        assert stats["last_sync"] == "p2p"
        assert stats["p2p_slots"] >= stats["nworkers"]
        run_mpjit(_plan(), _arrays(), max_workers=2, sync="barrier")
        assert pool_stats()["last_sync"] == "barrier"


class TestPoolLifecycle:
    def test_pool_spawned_once_across_runs(self, leak_check):
        """The fork/spawn cost is paid once and amortized: repeated mpjit
        runs reuse the same workers, and a warm worker re-executes from
        its in-memory module (recompiling nothing)."""
        ep = _plan()
        spawns_before = pool_stats()["spawns"]
        for _ in range(3):
            run_mpjit(ep, _arrays(), max_workers=2)
        stats = pool_stats()
        assert stats["alive"] is True
        assert stats["spawns"] == spawns_before + 1
        assert stats["runs"] == 3
        assert stats["nworkers"] == 2
        # First run: workers load the parent-persisted source from the
        # on-disk plan cache; afterwards it is memory-resident.
        assert stats["last_load_modes"] == ["memory", "memory"]

    def test_single_worker_bypasses_pool(self, leak_check):
        """With one resolved worker the compiled module runs serially
        in-process — no pool, no shared memory."""
        run_mpjit(_plan(procs=2), _arrays(), max_workers=1)
        assert pool_stats()["alive"] is False

    def test_worker_loads_from_disk_cache_when_cold(self, leak_check):
        """A cold worker fetches the generated source from the on-disk
        plan cache by signature (one compile, no emission)."""
        run_mpjit(_plan(), _arrays(), max_workers=2)
        assert pool_stats()["last_load_modes"] == ["disk", "disk"]

    def test_success_leaves_no_shm(self):
        before = _shm_entries()
        if before is None:
            pytest.skip("no /dev/shm on this platform")
        run_mpjit(_plan(), _arrays(), max_workers=2)
        shutdown_pool()
        assert _shm_entries() - before == set()

    def test_shutdown_is_idempotent(self, leak_check):
        """A daemon's SIGTERM drain and the atexit hook may both reach
        the pool: the second (and third) close must be a silent no-op,
        not a double-close of queues or re-terminate of reaped workers."""
        run_mpjit(_plan(), _arrays(), max_workers=2)
        pool = pool_mod._pool
        assert pool is not None and not pool.closed
        pool.close()          # the explicit daemon-facing alias
        assert pool.closed
        pool.close()          # second call: no-op
        pool.shutdown()       # and via the original name too
        assert all(not p.is_alive() for p in pool.workers.values())
        # The module-level teardown is equally reentrant, including
        # after the pool object itself was already closed.
        shutdown_pool()
        shutdown_pool()
        assert pool_stats()["alive"] is False

    def test_pool_respawns_after_close(self, leak_check):
        """Closing the pool must not poison the process: the next run
        transparently spawns a fresh pool."""
        run_mpjit(_plan(), _arrays(), max_workers=2)
        spawns = pool_stats()["spawns"]
        shutdown_pool()
        counters = run_mpjit(_plan(), _arrays(), max_workers=2)
        assert counters["fused_iterations"] > 0
        assert pool_stats()["spawns"] == spawns + 1
        assert pool_stats()["alive"] is True
