"""Worker-crash safety for the mp and mpjit backends.

A parallel runtime is only production-grade if a dead worker surfaces as
a prompt, informative error instead of a 600 s barrier hang.  These tests
inject failures into one worker — a Python exception (the traceback must
travel to the parent) and a hard ``os._exit`` (the liveness poll must
notice) — and assert that the run raises
:class:`~repro.runtime.fastexec.FastExecError` well under 10 seconds,
leaks no shared-memory segments and leaves no live child processes.
Failure injection relies on ``fork`` start-method inheritance (the
monkeypatched module state is visible in the forked worker), so the
crash tests skip on platforms without ``fork``.
"""

import multiprocessing as mp
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import build_execution_plan, derive_shift_peel
from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load
from repro.runtime import fastexec
from repro.runtime import pool as pool_mod
from repro.runtime.fastexec import FastExecError, _resolve_workers, run_mp
from repro.runtime.pool import pool_stats, run_mpjit, shutdown_pool

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="crash injection relies on fork inheritance",
)

CRASH_BUDGET_SECONDS = 10.0


def _plan(n=25, procs=3):
    i = Affine.var("i")
    nsym = Affine.var("n")
    seq = LoopSequence(
        (
            LoopNest((Loop.make("i", 2, nsym - 1),),
                     (assign("a", i, load("b", i)),), name="L1"),
            LoopNest((Loop.make("i", 2, nsym - 1),),
                     (assign("c", i, load("a", i + 1) + load("a", i - 1)),),
                     name="L2"),
        ),
        name="chain",
    )
    plan = derive_shift_peel(seq, ("n",))
    return build_execution_plan(plan, {"n": n}, num_procs=procs)


def _arrays(size=26, seed=11):
    rng = np.random.default_rng(seed)
    return {name: rng.random(size) + 0.5 for name in "abc"}


def _shm_entries():
    """Names of live POSIX shared-memory segments (Linux); None elsewhere."""
    base = Path("/dev/shm")
    if not base.is_dir():
        return None
    return {p.name for p in base.iterdir()}


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Crash tests must not inherit (or leave behind) a live pool: the
    injection hook is captured at fork time, and a poisoned barrier must
    not leak into the next test."""
    shutdown_pool()
    yield
    pool_mod._test_worker_hook = None
    shutdown_pool()


@pytest.fixture
def leak_check():
    """Assert no new shm segments and no new child processes survive."""
    shm_before = _shm_entries()
    children_before = set(mp.active_children())
    yield
    # A healthy pool deliberately outlives the run; retire it before
    # checking so only *unexpected* survivors count as leaks.
    shutdown_pool()
    leftover = set(mp.active_children()) - children_before
    assert not leftover, f"live child processes leaked: {leftover}"
    if shm_before is not None:
        leaked = _shm_entries() - shm_before
        assert not leaked, f"shared-memory segments leaked: {leaked}"


class TestRunMpCrashSafety:
    @needs_fork
    def test_worker_exception_ships_traceback(self, monkeypatch, leak_check):
        def boom(*args, **kwargs):
            raise ValueError("injected-mp-boom")

        monkeypatch.setattr(fastexec, "_run_proc_fused", boom)
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mp(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        message = str(excinfo.value)
        assert "injected-mp-boom" in message
        assert "Traceback" in message

    @needs_fork
    def test_worker_hard_crash_detected_by_liveness_poll(
        self, monkeypatch, leak_check
    ):
        monkeypatch.setattr(
            fastexec, "_run_proc_fused",
            lambda *args, **kwargs: os._exit(17),
        )
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mp(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        message = str(excinfo.value)
        assert "died without reporting" in message
        assert "17" in message

    @needs_fork
    def test_peel_phase_exception_after_barrier(self, monkeypatch, leak_check):
        def boom(*args, **kwargs):
            raise RuntimeError("injected-peel-boom")

        monkeypatch.setattr(fastexec, "_run_proc_peeled", boom)
        t0 = time.monotonic()
        with pytest.raises(FastExecError, match="injected-peel-boom"):
            run_mp(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS

    def test_default_worker_count_capped_by_cores(self, monkeypatch):
        """A 56-processor plan must not fork 56 processes on a small host."""
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert _resolve_workers(56, None) == 4
        assert _resolve_workers(2, None) == 2
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert _resolve_workers(56, None) == 1
        # An explicit request still wins (tests use it to force the pool).
        assert _resolve_workers(56, 8) == 8
        assert _resolve_workers(3, 8) == 3
        assert _resolve_workers(3, 0) == 1


class TestMpjitCrashSafety:
    @needs_fork
    def test_worker_exception_ships_traceback(self, leak_check):
        def boom(worker_id, signature):
            raise ValueError("injected-mpjit-boom")

        pool_mod._test_worker_hook = boom
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mpjit(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        message = str(excinfo.value)
        assert "injected-mpjit-boom" in message
        assert "Traceback" in message
        # The poisoned pool (aborted barrier) must be gone.
        assert pool_stats()["alive"] is False

    @needs_fork
    def test_worker_hard_crash_detected(self, leak_check):
        pool_mod._test_worker_hook = (
            lambda worker_id, signature: os._exit(23)
        )
        t0 = time.monotonic()
        with pytest.raises(FastExecError) as excinfo:
            run_mpjit(_plan(), _arrays(), max_workers=2)
        assert time.monotonic() - t0 < CRASH_BUDGET_SECONDS
        assert "died without reporting" in str(excinfo.value)
        assert pool_stats()["alive"] is False

    @needs_fork
    def test_pool_recovers_after_crash(self, leak_check):
        """A failed run tears the pool down; the next run must spawn a
        fresh pool and produce correct results."""
        def boom(worker_id, signature):
            raise ValueError("poison")

        pool_mod._test_worker_hook = boom
        with pytest.raises(FastExecError):
            run_mpjit(_plan(), _arrays(), max_workers=2)
        pool_mod._test_worker_hook = None

        ep = _plan()
        base = _arrays()
        from repro.runtime import run_parallel

        ref = {k: v.copy() for k, v in base.items()}
        expected = run_parallel(ep, ref)
        got = {k: v.copy() for k, v in base.items()}
        stats = run_mpjit(ep, got, max_workers=2)
        assert stats == {
            "fused_iterations": expected["fused_iterations"],
            "peeled_iterations": expected["peeled_iterations"],
        }
        for name in ref:
            assert np.array_equal(ref[name], got[name]), name
        assert pool_stats()["alive"] is True


class TestPoolLifecycle:
    def test_pool_spawned_once_across_runs(self, leak_check):
        """The fork/spawn cost is paid once and amortized: repeated mpjit
        runs reuse the same workers, and a warm worker re-executes from
        its in-memory module (recompiling nothing)."""
        ep = _plan()
        spawns_before = pool_stats()["spawns"]
        for _ in range(3):
            run_mpjit(ep, _arrays(), max_workers=2)
        stats = pool_stats()
        assert stats["alive"] is True
        assert stats["spawns"] == spawns_before + 1
        assert stats["runs"] == 3
        assert stats["nworkers"] == 2
        # First run: workers load the parent-persisted source from the
        # on-disk plan cache; afterwards it is memory-resident.
        assert stats["last_load_modes"] == ["memory", "memory"]

    def test_single_worker_bypasses_pool(self, leak_check):
        """With one resolved worker the compiled module runs serially
        in-process — no pool, no shared memory."""
        run_mpjit(_plan(procs=2), _arrays(), max_workers=1)
        assert pool_stats()["alive"] is False

    def test_worker_loads_from_disk_cache_when_cold(self, leak_check):
        """A cold worker fetches the generated source from the on-disk
        plan cache by signature (one compile, no emission)."""
        run_mpjit(_plan(), _arrays(), max_workers=2)
        assert pool_stats()["last_load_modes"] == ["disk", "disk"]

    def test_success_leaves_no_shm(self):
        before = _shm_entries()
        if before is None:
            pytest.skip("no /dev/shm on this platform")
        run_mpjit(_plan(), _arrays(), max_workers=2)
        shutdown_pool()
        assert _shm_entries() - before == set()
