"""Shared fixtures: the paper's running examples and small helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import Affine, Loop, LoopNest, LoopSequence, assign, load


@pytest.fixture(autouse=True)
def _isolated_jit_cache(tmp_path, monkeypatch):
    """Point the jit plan cache at a per-test directory.

    Tests must never read (or pollute) the developer's ~/.cache/repro/jit;
    the process-wide cache and auto-tuner objects are reset around each
    test so they pick up the redirected environment variable (the tuner
    store lives inside the plan-cache directory).
    """
    from repro.runtime import plancache
    from repro.runtime.autotune import reset_default_tuner

    monkeypatch.setenv(plancache.ENV_CACHE_DIR, str(tmp_path / "jit-cache"))
    plancache.reset_default_cache()
    reset_default_tuner()
    yield
    plancache.reset_default_cache()
    reset_default_tuner()


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """No fault plan or supervisor/breaker state leaks between tests.

    A stray ``REPRO_FAULTS`` in the developer's environment must not
    crash unrelated tests, and a chaos test's installed plan, breaker
    trips or quarantine records must not outlive it.
    """
    from repro.runtime import faults, supervisor

    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    faults.reset()
    supervisor.reset_defaults()
    yield
    faults.reset()
    supervisor.reset_defaults()


@pytest.fixture(autouse=True)
def _bounded_sync_timeout(monkeypatch):
    """Drop the 600 s sync backstop sharply under pytest.

    A test that somehow defeats the parent's crash detection must fail
    within seconds, not minutes.  Workers are forked after the variable
    is set, so they inherit it.
    """
    from repro.runtime import fastexec

    monkeypatch.setenv(fastexec.ENV_SYNC_TIMEOUT, "15")


@pytest.fixture
def n_var():
    return Affine.var("n")


def make_1d_nest(name, write, body_builder, lower=2, parallel=True):
    """One-statement 1-D nest ``write[i] = body_builder(i)`` over 2..n-1."""
    i = Affine.var("i")
    n = Affine.var("n")
    return LoopNest(
        (Loop.make("i", lower, n - 1, parallel=parallel),),
        (assign(write, i, body_builder(i)),),
        name=name,
    )


@pytest.fixture
def fig9_sequence():
    """Paper Fig. 9: L1 a=b; L2 c=a[i+1]+a[i-1]; L3 d=c[i+1]+c[i-1]."""
    return LoopSequence(
        (
            make_1d_nest("L1", "a", lambda i: load("b", i)),
            make_1d_nest("L2", "c", lambda i: load("a", i + 1) + load("a", i - 1)),
            make_1d_nest("L3", "d", lambda i: load("c", i + 1) + load("c", i - 1)),
        ),
        name="fig9",
    )


@pytest.fixture
def fig13_sequence():
    """Paper Fig. 13: L1 a[i]=b[i-1]; L2 b[i]=a[i-1] (both directions)."""
    return LoopSequence(
        (
            make_1d_nest("L1", "a", lambda i: load("b", i - 1)),
            make_1d_nest("L2", "b", lambda i: load("a", i - 1)),
        ),
        name="fig13",
    )


@pytest.fixture
def fig4_sequence():
    """Paper Fig. 4: serializing (forward) dependence only."""
    return LoopSequence(
        (
            make_1d_nest("L1", "a", lambda i: load("b", i)),
            make_1d_nest("L2", "c", lambda i: load("a", i) + load("a", i - 1)),
        ),
        name="fig4",
    )


@pytest.fixture
def jacobi_sequence():
    from repro.kernels import jacobi

    return jacobi.program().sequences[0]


def alloc_1d(names, size, seed=0):
    rng = np.random.default_rng(seed)
    return {name: rng.random(size) + 0.5 for name in names}


def alloc_2d(names, shape, seed=0):
    rng = np.random.default_rng(seed)
    return {name: rng.random(shape) + 0.5 for name in names}


def copy_arrays(arrays):
    return {k: v.copy() for k, v in arrays.items()}


def arrays_equal(a, b):
    return all(np.allclose(a[k], b[k]) for k in a)
