"""The measured-cost auto-tuner: keys, persistence, hit/miss accounting.

The tuner's contract is that a configuration is *timed once per
(kernel IR, shape, procs, machine)* and replayed from the persisted
store forever after — so the tests drive ``resolve_config`` twice (and
through a fresh tuner instance, standing in for a fresh process) and
assert the second resolution is a pure lookup: hit counted, zero
candidates timed, identical winner.  Corrupt store files must degrade
to an invalid-miss and a re-tune, never an exception or a trusted
payload.
"""

import json

import pytest

from repro.kernels import get_kernel
from repro.runtime.autotune import (
    SCHEMA,
    AutoTuner,
    candidate_configs,
    machine_fingerprint,
    resolve_config,
    tuning_key,
)
from repro.runtime.benchmarking import measure_kernel, resolve_params


def _key(kernel="jacobi", n=21, procs=4):
    info = get_kernel(kernel)
    program = info.program()
    params = resolve_params(info, program, n=n)
    return tuning_key(program, params, procs)


class TestKeying:
    def test_key_is_stable_and_shape_sensitive(self):
        assert _key() == _key()
        assert _key(n=21) != _key(n=33)
        assert _key(procs=4) != _key(procs=2)
        assert _key(kernel="jacobi") != _key(kernel="ll18")

    def test_key_embeds_machine_fingerprint(self, monkeypatch):
        """A winner measured on one machine must never be replayed on
        another — faking the fingerprint must change the key."""
        before = _key()
        import repro.runtime.autotune as autotune_mod

        monkeypatch.setattr(autotune_mod, "machine_fingerprint",
                            lambda: "cpu64-loongarch")
        assert _key() != before

    def test_fingerprint_mentions_core_count(self):
        import os

        assert f"cpu{os.cpu_count() or 1}" in machine_fingerprint()

    def test_fingerprint_covers_python_codegen_and_compiler(self):
        """A toolchain change (interpreter, codegen version, C compiler)
        must invalidate stored winners — all three live in the key."""
        import sys

        from repro.codegen.emitc import compiler_fingerprint
        from repro.codegen.emitpy import CODEGEN_VERSION

        fp = machine_fingerprint()
        assert f"py{sys.version_info[0]}.{sys.version_info[1]}" in fp
        assert f"cg{CODEGEN_VERSION}" in fp
        cc = compiler_fingerprint() or "none"
        assert f"cc{cc}" in fp


class TestCandidates:
    def test_serial_always_parallel_gated_on_cores(self):
        single = candidate_configs(procs=4, cpu_count=1)
        assert single and all(c["backend"] in ("jit", "cjit")
                              for c in single)
        multi = candidate_configs(procs=16, cpu_count=8)
        mpjit = [c for c in multi if c["backend"] == "mpjit"]
        assert mpjit and all(c["sync"] == "p2p" for c in mpjit)
        assert {c.get("max_workers") for c in mpjit} == {None, 4}
        # a serial plan never gets a parallel candidate
        assert all(c["backend"] in ("jit", "cjit")
                   for c in candidate_configs(procs=1, cpu_count=8))

    def test_worker_counts_deduped_by_effective_pool_size(self):
        """On cpu_count=8 with procs=4 the half-cores option resolves to
        the same effective pool as all-cores (min(4, 8) == max(2, 4)) —
        it must be timed once, spelled ``max_workers=None``."""
        mpjit = [c for c in candidate_configs(procs=4, cpu_count=8)
                 if c["backend"] == "mpjit"]
        assert [c["max_workers"] for c in mpjit] == [None]
        # distinct counts emitted sorted by effective size, ints first
        mpjit = [c for c in candidate_configs(procs=16, cpu_count=8)
                 if c["backend"] == "mpjit"]
        assert [c["max_workers"] for c in mpjit] == [4, None]

    def test_cjit_candidates_gated_on_compiler(self, monkeypatch):
        import repro.codegen.emitc as emitc

        if emitc.find_compiler() is not None:
            cjit = [c for c in candidate_configs(procs=4, cpu_count=8)
                    if c["backend"] == "cjit"]
            assert cjit and {c.get("strip") for c in cjit} == {None, 32}
        monkeypatch.setenv(emitc.ENV_CC, "/nonexistent/compiler")
        assert all(c["backend"] != "cjit"
                   for c in candidate_configs(procs=4, cpu_count=8))


class TestResolveConfig:
    def test_miss_times_then_hit_reuses(self):
        tuner = AutoTuner()
        config, info = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                      tuner=tuner)
        assert info["hit"] is False
        assert info["candidates_timed"] >= 2
        assert config["backend"] in ("jit", "cjit", "mpjit")
        assert tuner.stats.misses == 1 and tuner.stats.stores == 1
        # Second resolution: pure lookup, nothing timed.
        config2, info2 = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                        tuner=tuner)
        assert info2["hit"] is True
        assert info2["candidates_timed"] == 0
        assert config2 == config
        assert tuner.stats.hits == 1

    def test_persisted_winner_survives_a_fresh_tuner(self):
        """A fresh tuner instance (a fresh process, in effect) hits the
        on-disk winner without re-timing anything."""
        first = AutoTuner()
        config, _ = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                   tuner=first)
        fresh = AutoTuner()
        config2, info = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                       tuner=fresh)
        assert info["hit"] is True and fresh.stats.hits == 1
        assert config2 == config
        path = fresh.path(info["key"])
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        assert payload["machine"] == machine_fingerprint()
        assert payload["winner"]["config"] == config
        assert payload["candidates"]
        assert all("seconds" in c for c in payload["candidates"])

    def test_corrupt_store_file_is_invalid_miss(self):
        tuner = AutoTuner()
        _, info = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                 tuner=tuner)
        path = tuner.path(info["key"])
        path.write_text("{ not json")
        fresh = AutoTuner()
        _, info2 = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                  tuner=fresh)
        assert info2["hit"] is False
        assert fresh.stats.invalid == 1 and fresh.stats.misses == 1
        # the re-tune repaired the store
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_foreign_schema_rejected(self):
        tuner = AutoTuner()
        _, info = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                 tuner=tuner)
        path = tuner.path(info["key"])
        path.write_text(json.dumps({"schema": "someone-else/9",
                                    "winner": {"config": {"backend": "rm"}}}))
        fresh = AutoTuner()
        config, info2 = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                       tuner=fresh)
        assert info2["hit"] is False and fresh.stats.invalid == 1
        assert config["backend"] != "rm"

    def test_in_memory_only_tuner_touches_no_disk(self):
        tuner = AutoTuner(persist=False)
        _, info = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                 tuner=tuner)
        assert not tuner.path(info["key"]).exists()
        _, info2 = resolve_config("jacobi", n=21, procs=4, repeat=1,
                                  tuner=tuner)
        assert info2["hit"] is True  # memory hit still works


class TestMeasureKernelIntegration:
    def test_autotune_record_and_warm_reuse(self):
        tuner = AutoTuner()
        record = measure_kernel("jacobi", "vector", n=21, procs=4, repeat=2,
                                autotune=True, tuner=tuner)
        tune = record["autotune"]
        assert tune["hit"] is False and tune["candidates_timed"] >= 2
        # the tuner overrode the requested backend with its winner
        assert record["backend"] == tune["winner"]["config"]["backend"]
        record2 = measure_kernel("jacobi", "vector", n=21, procs=4, repeat=2,
                                 autotune=True, tuner=tuner)
        assert record2["autotune"]["hit"] is True
        assert record2["autotune"]["candidates_timed"] == 0
        assert record2["autotune"]["stats"]["hits"] == 1
        assert record2["checksum"] == record["checksum"]

    def test_label_overrides_reported_backend(self):
        record = measure_kernel("jacobi", "mpjit", n=21, procs=4, repeat=2,
                                max_workers=2, sync="barrier",
                                label="mpjit-barrier")
        assert record["backend"] == "mpjit-barrier"
        assert record["sync"] == "barrier"
        plain = measure_kernel("jacobi", "mpjit", n=21, procs=4, repeat=2,
                               max_workers=2)
        assert plain["sync"] == "p2p"
        assert plain["checksum"] == record["checksum"]


class TestCliAutotune:
    def test_exec_autotune_cold_then_warm(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["exec", "jacobi", "--backend", "jit", "--n", "21",
                       "--repeat", "1", "--autotune"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "auto-tuner: miss" in out and "candidates timed" in out
        rc = cli_main(["exec", "jacobi", "--backend", "jit", "--n", "21",
                       "--repeat", "1", "--autotune"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "auto-tuner: hit" in out
        assert "0 candidates timed" in out

    def test_exec_no_autotune_is_default(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["exec", "jacobi", "--backend", "jit", "--n", "21",
                       "--repeat", "1", "--no-autotune"])
        assert rc == 0
        assert "auto-tuner" not in capsys.readouterr().out
